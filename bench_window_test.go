// BenchmarkWindowCheckpoint measures the durability tax of windowed
// aggregation: one durable checkpoint write (marshal, CRC, fsync, atomic
// rename) and one crash recovery (scan, CRC validation, decode) as the
// persisted accumulator grows in aggregate width and retained windows. The
// write is fsync-bound at small sizes and linear in state beyond; recovery
// stays below the write at every size, which is what makes boot-time
// recovery cheap relative to the periodic write cadence it rides on.
package prio_test

import (
	"fmt"
	"testing"

	"prio/internal/core"
	"prio/internal/field"
	"prio/internal/window"
)

// windowSnapshotFixture builds checkpoint state with aggregate width k and
// `windows` retained windows, half sealed — a steady-state retention buffer.
func windowSnapshotFixture(k, windows int) *window.Snapshot[uint64] {
	vec := func(seed uint64) []uint64 {
		v := make([]uint64, k)
		for i := range v {
			v[i] = seed*uint64(i+1) + uint64(i)
		}
		return v
	}
	snap := &window.Snapshot[uint64]{
		LastPublished: uint64(windows / 2),
		DPSpent:       0.5 * float64(windows/2),
		Acc: core.AccState[uint64]{
			Total:      vec(7),
			TotalCount: 1 << 20,
		},
	}
	for w := 1; w <= windows; w++ {
		snap.Acc.Windows = append(snap.Acc.Windows, core.WindowState[uint64]{
			ID:     uint64(w),
			Sealed: w <= windows/2,
			Noised: w <= windows/2,
			Eps:    0.5,
			Count:  uint64(1000 + w),
			Vec:    vec(uint64(w)),
		})
	}
	return snap
}

func BenchmarkWindowCheckpoint(b *testing.B) {
	f := field.NewF64()
	for _, sh := range []struct{ k, windows int }{
		{64, 8}, {1024, 8}, {1024, 64}, {4096, 64},
	} {
		snap := windowSnapshotFixture(sh.k, sh.windows)
		b.Run(fmt.Sprintf("write/k=%d/windows=%d", sh.k, sh.windows), func(b *testing.B) {
			st, err := window.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			var bytes int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := window.Save(st, f, snap)
				if err != nil {
					b.Fatal(err)
				}
				bytes = n
			}
			b.SetBytes(int64(bytes))
		})
		b.Run(fmt.Sprintf("recover/k=%d/windows=%d", sh.k, sh.windows), func(b *testing.B) {
			st, err := window.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			n, err := window.Save(st, f, snap)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := window.Load(st, f, sh.k)
				if err != nil || got == nil {
					b.Fatalf("recovery failed: %v", err)
				}
			}
		})
	}
}
