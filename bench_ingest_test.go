// Benchmarks for the streaming ingestion subsystem (internal/ingest): the
// streamed submission path against the per-connection round-trip path it
// replaces, at equal shard count, over real TCP.
//
// The workload is chosen so the front door is what gets measured: sum8 in
// no-robustness mode, unsealed, so per-submission server work is a few
// field additions and the two paths differ only in how submissions cross
// the wire. The acceptance bar for the subsystem is StreamIngest ≥ 5×
// SubmitRoundTrip:
//
//	go test -bench=Ingest -benchtime=2s .
package prio_test

import (
	"testing"

	"prio/internal/afe"
	"prio/internal/core"
	"prio/internal/field"
	"prio/internal/ingest"
	"prio/internal/transport"
)

// ingestBench is a three-server TCP deployment with the ingest handler and
// the legacy MsgSubmit path on the leader's listener.
type ingestBench struct {
	pl   *core.Pipeline[field.F64, uint64]
	sub  *core.Submission
	addr string
	stop []func()
}

func newIngestBench(b *testing.B, shards int) *ingestBench {
	b.Helper()
	f := field.NewF64()
	scheme := afe.NewSum(f, 8)
	pro, err := core.NewProtocol(core.Config[field.F64, uint64]{
		Field: f, Scheme: scheme, Servers: 3, Mode: core.ModeNoRobust, SnipReps: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	d := &ingestBench{}
	srvs := make([]*core.Server[field.F64, uint64], 3)
	peers := make([]transport.Peer, 3)
	for i := range srvs {
		if srvs[i], err = core.NewServer(pro, i, nil); err != nil {
			b.Fatal(err)
		}
	}
	peers[0] = &transport.LoopbackPeer{Handler: srvs[0].Handle}
	for i := 1; i < 3; i++ {
		ln, err := transport.Listen("127.0.0.1:0", nil, srvs[i].Handle)
		if err != nil {
			b.Fatal(err)
		}
		d.stop = append(d.stop, func() { ln.Close() })
		p, err := transport.Dial(ln.Addr().String(), nil)
		if err != nil {
			b.Fatal(err)
		}
		peers[i] = transport.NewCoalescer(p)
	}
	leader, err := core.NewLeader(srvs[0], peers)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := core.NewPipeline(leader, core.PipelineConfig{Shards: shards, MaxBatch: 64})
	if err != nil {
		b.Fatal(err)
	}
	d.pl = pl
	d.stop = append(d.stop, func() { pl.Close() })
	ing := ingest.NewServer(pl, ingest.Config{Credits: 512, QueueDepth: 4096})
	d.stop = append(d.stop, ing.Close)
	ln, err := transport.Listen("127.0.0.1:0", nil, func(msgType byte, payload []byte) ([]byte, error) {
		if msgType != core.MsgSubmit {
			return srvs[0].Handle(msgType, payload)
		}
		sub, err := core.UnmarshalSubmission(payload)
		if err != nil {
			return nil, err
		}
		return nil, pl.SubmitFunc(sub, nil)
	})
	if err != nil {
		b.Fatal(err)
	}
	ln.OnStream(ing.Handler())
	d.addr = ln.Addr().String()
	d.stop = append(d.stop, func() { ln.Close() })

	client, err := core.NewClient(pro, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := scheme.Encode(1)
	if err != nil {
		b.Fatal(err)
	}
	if d.sub, err = client.BuildSubmission(enc); err != nil {
		b.Fatal(err)
	}
	return d
}

func (d *ingestBench) close() {
	for i := len(d.stop) - 1; i >= 0; i-- {
		d.stop[i]()
	}
}

// BenchmarkStreamIngest pipelines b.N submissions over one ingest stream and
// waits for every ack.
func BenchmarkStreamIngest(b *testing.B) {
	d := newIngestBench(b, 2)
	defer d.close()
	s, err := ingest.Dial(d.addr, ingest.SubmitterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(d.sub); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Wait(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if st := s.Stats(); st.Accepted != uint64(b.N) {
		b.Fatalf("accepted %d of %d (%d shed)", st.Accepted, b.N, st.Shed)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "subs/s")
}

// BenchmarkSubmitRoundTrip submits b.N submissions serially over one
// connection, one request/response round-trip each — the pre-ingest path.
func BenchmarkSubmitRoundTrip(b *testing.B) {
	d := newIngestBench(b, 2)
	defer d.close()
	peer, err := transport.Dial(d.addr, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer peer.Close()
	payload := d.sub.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := peer.Call(core.MsgSubmit, payload); err != nil {
			b.Fatal(err)
		}
	}
	d.pl.Drain()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "subs/s")
}
